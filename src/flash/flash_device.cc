#include "flash/flash_device.h"

#include <utility>

namespace gecko {

FlashDevice::FlashDevice(const Geometry& geometry, LatencyModel latency,
                         FaultConfig faults)
    : geometry_(geometry),
      stats_(latency, geometry.num_channels),
      channels_(geometry.num_channels, latency),
      faults_(faults),
      pages_(geometry.TotalPages()),
      blocks_(geometry.num_blocks) {
  geometry_.Validate();
  for (BlockId b : faults_.config().factory_bad) {
    GECKO_CHECK_LT(b, geometry_.num_blocks)
        << "factory-bad block out of range";
    RetireBlock(b);
  }
}

void FlashDevice::CheckAddress(PhysicalAddress addr) const {
  GECKO_CHECK_LT(addr.block, geometry_.num_blocks)
      << "block out of range: " << addr.ToString();
  GECKO_CHECK_LT(addr.page, geometry_.pages_per_block)
      << "page out of range: " << addr.ToString();
}

void FlashDevice::BeginBatch() { ++batch_depth_; }

FlashDevice::BatchResult FlashDevice::EndBatch() {
  GECKO_CHECK_GT(batch_depth_, 0u) << "EndBatch without BeginBatch";
  --batch_depth_;
  if (batch_depth_ > 0) return BatchResult{};
  return DrainChannels();
}

FlashDevice::BatchResult FlashDevice::DrainChannels() {
  std::vector<FlashSubmission> completed;
  ChannelArray::DrainResult drained = channels_.Drain(&completed);
  for (const FlashSubmission& sub : completed) {
    stats_.OnChannelComplete(sub.channel, sub.ServiceUs());
  }
  stats_.AdvanceElapsed(drained.elapsed_us);
  BatchResult result;
  result.elapsed_us = drained.elapsed_us;
  result.ops = drained.ops;
  result.max_queue_depth = drained.max_queue_depth;
  return result;
}

FlashDevice::BatchResult FlashDevice::AdvanceTo(double until_us) {
  std::vector<FlashSubmission> completed;
  ChannelArray::DrainResult drained = channels_.DrainUntil(until_us,
                                                           &completed);
  for (const FlashSubmission& sub : completed) {
    stats_.OnChannelComplete(sub.channel, sub.ServiceUs());
  }
  stats_.AdvanceElapsed(drained.elapsed_us);
  BatchResult result;
  result.elapsed_us = drained.elapsed_us;
  result.ops = drained.ops;
  result.max_queue_depth = drained.max_queue_depth;
  return result;
}

void FlashDevice::BeginOpScope() {
  GECKO_CHECK(!op_scope_open_) << "op scopes do not nest";
  op_scope_open_ = true;
  op_scope_ = OpScope{};
}

FlashDevice::OpScope FlashDevice::EndOpScope() {
  GECKO_CHECK(op_scope_open_) << "EndOpScope without BeginOpScope";
  op_scope_open_ = false;
  return op_scope_;
}

void FlashDevice::NoteScopedOp(const FlashSubmission& sub) {
  if (!op_scope_open_) return;
  ++op_scope_.ops;
  if (sub.complete_us > op_scope_.last_complete_us) {
    op_scope_.last_complete_us = sub.complete_us;
  }
}

void FlashDevice::SubmitOp(FlashOpKind kind, PhysicalAddress addr,
                           IoPurpose purpose, FlashCompletion on_complete) {
  ChannelId channel = ChannelOf(addr.block);
  stats_.OnChannelSubmit(channel);
  if (batch_depth_ == 0) {
    // Serial fast lane: no parking, no drain sort — stamp, complete, and
    // account inline. Timing-equivalent to Submit + Drain of one op.
    double before = channels_.now_us();
    FlashSubmission sub =
        channels_.SubmitImmediate(channel, kind, addr, purpose);
    stats_.OnChannelComplete(channel, sub.ServiceUs());
    stats_.AdvanceElapsed(channels_.now_us() - before);
    NoteScopedOp(sub);
    if (on_complete) on_complete(sub);
    return;
  }
  NoteScopedOp(
      channels_.Submit(channel, kind, addr, purpose, std::move(on_complete)));
}

uint64_t FlashDevice::WritePage(PhysicalAddress addr, SpareArea spare,
                                uint64_t payload, IoPurpose purpose) {
  return WritePageAsync(addr, spare, payload, purpose, nullptr);
}

uint64_t FlashDevice::WritePageAsync(PhysicalAddress addr, SpareArea spare,
                                     uint64_t payload, IoPurpose purpose,
                                     FlashCompletion on_complete) {
  ProgramResult r =
      ProgramPageInternal(addr, spare, payload, purpose, std::move(on_complete));
  GECKO_CHECK(r.ok) << "unhandled program fault at " << addr.ToString()
                    << " (use ProgramPage / AllocateAndProgram on fault-"
                    << "injected devices)";
  return r.seq;
}

ProgramResult FlashDevice::ProgramPage(PhysicalAddress addr, SpareArea spare,
                                       uint64_t payload, IoPurpose purpose) {
  return ProgramPageInternal(addr, spare, payload, purpose, nullptr);
}

ProgramResult FlashDevice::ProgramPageInternal(PhysicalAddress addr,
                                               SpareArea spare,
                                               uint64_t payload,
                                               IoPurpose purpose,
                                               FlashCompletion on_complete) {
  CheckAddress(addr);
  BlockRecord& block = blocks_[addr.block];
  GECKO_CHECK(!block.retired)
      << "program to retired block " << addr.ToString();
  // NAND rule (4): programs within a block must be sequential, and rule (2):
  // a programmed page cannot be reprogrammed before an erase.
  GECKO_CHECK_EQ(addr.page, block.write_pointer)
      << "non-sequential program at " << addr.ToString()
      << " (write pointer at page " << block.write_pointer << ")";
  PageRecord& page = pages_[FlatIndex(addr)];
  GECKO_CHECK(!page.written) << "rewriting programmed page " << addr.ToString();
  GECKO_CHECK(spare.type != PageType::kFree)
      << "writes must declare a page type";

  // The attempt consumes the page and a sequence number whether or not the
  // medium accepts it: a failed program leaves the cells in an undefined
  // state, so the page can never be used until the block is erased. The
  // stamped spare (with its seq) is kept so recovery scans still see a
  // monotone seq order within the block; reads flag it media_error.
  spare.seq = next_seq_++;
  spare.erase_count = static_cast<uint16_t>(block.erase_count);
  block.last_program_seq = spare.seq;
  page.written = true;
  page.spare = spare;
  ++block.write_pointer;
  bool failed = faults_.RollProgramFault(addr);
  if (failed) {
    page.bad = true;
    page.payload = 0;
    stats_.OnProgramFault();
  } else {
    page.payload = payload;
  }
  stats_.OnPageWrite(purpose);
  SubmitOp(FlashOpKind::kPageWrite, addr, purpose, std::move(on_complete));
  return ProgramResult{!failed, spare.seq};
}

void FlashDevice::ChargeReadRetries(PhysicalAddress addr, IoPurpose purpose,
                                    uint32_t retries) {
  // Each retry is one more real read op on the page's channel: it queues,
  // occupies the channel for a full read latency, and delays everything
  // behind it — but is not a distinct page read in the per-purpose counts
  // (the host issued one read; the medium just made it expensive).
  for (uint32_t i = 0; i < retries; ++i) {
    SubmitOp(FlashOpKind::kPageRead, addr, purpose, nullptr);
  }
}

PageReadResult FlashDevice::ReadPage(PhysicalAddress addr, IoPurpose purpose) {
  return ReadPageAsync(addr, purpose, nullptr);
}

PageReadResult FlashDevice::ReadPageAsync(PhysicalAddress addr,
                                          IoPurpose purpose,
                                          FlashCompletion on_complete) {
  CheckAddress(addr);
  stats_.OnPageRead(purpose);
  SubmitOp(FlashOpKind::kPageRead, addr, purpose, std::move(on_complete));
  const BlockRecord& block = blocks_[addr.block];
  const PageRecord& page = pages_[FlatIndex(addr)];
  if (block.retired || page.bad) {
    // Known-bad medium: no fault roll, no retries — the data is simply
    // not there. The stored spare is returned for recovery-scan ordering.
    return PageReadResult{page.written, 0, page.spare, true};
  }
  if (page.written) {
    uint32_t retries = faults_.RollTransientReadRetries(addr);
    if (retries > 0) {
      ChargeReadRetries(addr, purpose, retries);
      stats_.OnTransientReadFault(retries);
    }
    if (faults_.RollHardReadFault(addr, purpose == IoPurpose::kUserRead)) {
      stats_.OnHardReadFault();
      return PageReadResult{true, 0, page.spare, true};
    }
  }
  return PageReadResult{page.written, page.payload, page.spare, false};
}

PageReadResult FlashDevice::ReadSpare(PhysicalAddress addr, IoPurpose purpose) {
  return ReadSpareAsync(addr, purpose, nullptr);
}

PageReadResult FlashDevice::ReadSpareAsync(PhysicalAddress addr,
                                           IoPurpose purpose,
                                           FlashCompletion on_complete) {
  CheckAddress(addr);
  stats_.OnSpareRead(purpose);
  SubmitOp(FlashOpKind::kSpareRead, addr, purpose, std::move(on_complete));
  const BlockRecord& block = blocks_[addr.block];
  const PageRecord& page = pages_[FlatIndex(addr)];
  // Spare reads never fault by rate (firmware keeps OOB metadata under
  // much stronger ECC), but a bad/retired page's spare is still flagged so
  // scans know its key/type cannot be trusted.
  bool media_error = block.retired || page.bad;
  return PageReadResult{page.written, 0, page.spare, media_error};
}

void FlashDevice::EraseBlock(BlockId block_id, IoPurpose purpose) {
  EraseBlockAsync(block_id, purpose, nullptr);
}

void FlashDevice::EraseBlockAsync(BlockId block_id, IoPurpose purpose,
                                  FlashCompletion on_complete) {
  GECKO_CHECK(EraseBlockInternal(block_id, purpose, std::move(on_complete)))
      << "unhandled erase fault at block " << block_id
      << " (use TryEraseBlock on fault-injected devices)";
}

bool FlashDevice::TryEraseBlock(BlockId block_id, IoPurpose purpose) {
  return EraseBlockInternal(block_id, purpose, nullptr);
}

bool FlashDevice::EraseBlockInternal(BlockId block_id, IoPurpose purpose,
                                     FlashCompletion on_complete) {
  GECKO_CHECK_LT(block_id, geometry_.num_blocks);
  BlockRecord& block = blocks_[block_id];
  GECKO_CHECK(!block.retired) << "erase of retired block " << block_id;
  if (faults_.RollEraseFault(block_id)) {
    // The failed attempt still occupied the channel for an erase latency;
    // the block is permanently retired (grown bad).
    stats_.OnEraseFault();
    SubmitOp(FlashOpKind::kErase, PhysicalAddress{block_id, 0}, purpose,
             std::move(on_complete));
    RetireBlock(block_id);
    return false;
  }
  uint64_t base = uint64_t{block_id} * geometry_.pages_per_block;
  for (uint32_t i = 0; i < geometry_.pages_per_block; ++i) {
    pages_[base + i] = PageRecord{};
  }
  block.write_pointer = 0;
  ++block.erase_count;
  block.last_program_seq = 0;
  block.last_erase_seq = next_seq_++;
  ++global_erase_count_;
  stats_.OnErase(purpose);
  SubmitOp(FlashOpKind::kErase, PhysicalAddress{block_id, 0}, purpose,
           std::move(on_complete));
  return true;
}

void FlashDevice::RetireBlock(BlockId block_id) {
  GECKO_CHECK_LT(block_id, geometry_.num_blocks);
  BlockRecord& block = blocks_[block_id];
  if (block.retired) return;
  uint64_t base = uint64_t{block_id} * geometry_.pages_per_block;
  for (uint32_t i = 0; i < geometry_.pages_per_block; ++i) {
    pages_[base + i] = PageRecord{};
  }
  block.write_pointer = 0;
  block.last_program_seq = 0;
  block.retired = true;
  ++num_bad_blocks_;
}

bool FlashDevice::IsBadBlock(BlockId block_id) const {
  GECKO_CHECK_LT(block_id, geometry_.num_blocks);
  return blocks_[block_id].retired;
}

uint32_t FlashDevice::PagesWritten(BlockId block) const {
  GECKO_CHECK_LT(block, geometry_.num_blocks);
  return blocks_[block].write_pointer;
}

bool FlashDevice::IsWritten(PhysicalAddress addr) const {
  CheckAddress(addr);
  return pages_[FlatIndex(addr)].written;
}

uint32_t FlashDevice::EraseCount(BlockId block) const {
  GECKO_CHECK_LT(block, geometry_.num_blocks);
  return blocks_[block].erase_count;
}

uint64_t FlashDevice::LastEraseSeq(BlockId block) const {
  GECKO_CHECK_LT(block, geometry_.num_blocks);
  return blocks_[block].last_erase_seq;
}

uint64_t FlashDevice::LastProgramSeq(BlockId block) const {
  GECKO_CHECK_LT(block, geometry_.num_blocks);
  return blocks_[block].last_program_seq;
}

}  // namespace gecko
