#include "flash/channel_queue.h"

#include <algorithm>

#include "util/check.h"

namespace gecko {

const char* FlashOpKindName(FlashOpKind k) {
  switch (k) {
    case FlashOpKind::kPageWrite: return "page-write";
    case FlashOpKind::kPageRead: return "page-read";
    case FlashOpKind::kSpareRead: return "spare-read";
    case FlashOpKind::kErase: return "erase";
  }
  return "?";
}

ChannelQueue::ChannelQueue(ChannelId id, LatencyModel latency)
    : id_(id), latency_(latency) {}

double ChannelQueue::LatencyFor(FlashOpKind kind) const {
  switch (kind) {
    case FlashOpKind::kPageWrite: return latency_.page_write_us;
    case FlashOpKind::kPageRead: return latency_.page_read_us;
    case FlashOpKind::kSpareRead: return latency_.spare_read_us;
    case FlashOpKind::kErase: return latency_.erase_us;
  }
  return 0;
}

FlashSubmission ChannelQueue::Stamp(uint64_t id, FlashOpKind kind,
                                    PhysicalAddress addr, IoPurpose purpose,
                                    double now_us) {
  FlashSubmission sub;
  sub.id = id;
  sub.channel = id_;
  sub.kind = kind;
  sub.addr = addr;
  sub.purpose = purpose;
  sub.submit_us = now_us;
  sub.start_us = std::max(now_us, busy_until_us_);
  // Idle accounting: the gap between the channel going quiet and this op
  // arriving is time the channel had nothing to do.
  if (sub.start_us > busy_until_us_) idle_us_ += sub.start_us - busy_until_us_;
  sub.complete_us = sub.start_us + LatencyFor(kind);
  busy_until_us_ = sub.complete_us;
  return sub;
}

const FlashSubmission& ChannelQueue::Submit(uint64_t id, FlashOpKind kind,
                                            PhysicalAddress addr,
                                            IoPurpose purpose, double now_us,
                                            FlashCompletion on_complete) {
  Pending p;
  p.submission = Stamp(id, kind, addr, purpose, now_us);
  p.on_complete = std::move(on_complete);
  pending_.push_back(std::move(p));
  return pending_.back().submission;
}

void ChannelQueue::TakePending(std::vector<Pending>* out) {
  for (Pending& p : pending_) out->push_back(std::move(p));
  pending_.clear();
}

void ChannelQueue::TakeCompletedUntil(double until_us,
                                      std::vector<Pending>* out) {
  while (!pending_.empty() &&
         pending_.front().submission.complete_us <= until_us) {
    out->push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
}

ChannelArray::ChannelArray(uint32_t num_channels, LatencyModel latency) {
  GECKO_CHECK_GE(num_channels, 1u);
  channels_.reserve(num_channels);
  for (ChannelId c = 0; c < num_channels; ++c) {
    channels_.emplace_back(c, latency);
  }
}

const FlashSubmission& ChannelArray::Submit(ChannelId c, FlashOpKind kind,
                                            PhysicalAddress addr,
                                            IoPurpose purpose,
                                            FlashCompletion on_complete) {
  GECKO_CHECK_LT(c, channels_.size());
  const FlashSubmission& sub = channels_[c].Submit(
      next_id_++, kind, addr, purpose, now_us_, std::move(on_complete));
  uint32_t depth = static_cast<uint32_t>(channels_[c].depth());
  if (depth > max_depth_since_drain_) max_depth_since_drain_ = depth;
  return sub;
}

FlashSubmission ChannelArray::SubmitImmediate(ChannelId c, FlashOpKind kind,
                                              PhysicalAddress addr,
                                              IoPurpose purpose) {
  GECKO_CHECK_LT(c, channels_.size());
  FlashSubmission sub = channels_[c].Stamp(next_id_++, kind, addr, purpose,
                                           now_us_);
  now_us_ = std::max(now_us_, sub.complete_us);
  return sub;
}

namespace {
// Retirement order: global completion time; ties (e.g. equal-latency ops
// started together on different channels) break by submission id so the
// order is deterministic.
void SortByCompletion(std::vector<ChannelQueue::Pending>* pending) {
  std::sort(pending->begin(), pending->end(),
            [](const ChannelQueue::Pending& a, const ChannelQueue::Pending& b) {
              if (a.submission.complete_us != b.submission.complete_us) {
                return a.submission.complete_us < b.submission.complete_us;
              }
              return a.submission.id < b.submission.id;
            });
}
}  // namespace

ChannelArray::DrainResult ChannelArray::Drain(
    std::vector<FlashSubmission>* completed) {
  std::vector<ChannelQueue::Pending> pending;
  for (ChannelQueue& ch : channels_) ch.TakePending(&pending);

  DrainResult result;
  result.max_queue_depth = max_depth_since_drain_;
  max_depth_since_drain_ = 0;
  if (pending.empty()) return result;

  SortByCompletion(&pending);

  double finish = now_us_;
  for (ChannelQueue::Pending& p : pending) {
    finish = std::max(finish, p.submission.complete_us);
    if (p.on_complete) p.on_complete(p.submission);
    if (completed != nullptr) completed->push_back(p.submission);
    ++result.ops;
  }
  result.elapsed_us = finish - now_us_;
  now_us_ = finish;
  return result;
}

ChannelArray::DrainResult ChannelArray::DrainUntil(
    double until_us, std::vector<FlashSubmission>* completed) {
  std::vector<ChannelQueue::Pending> due;
  for (ChannelQueue& ch : channels_) ch.TakeCompletedUntil(until_us, &due);
  SortByCompletion(&due);

  DrainResult result;
  result.max_queue_depth = max_depth_since_drain_;  // still accumulating
  double finish = std::max(now_us_, until_us);
  for (ChannelQueue::Pending& p : due) {
    if (p.on_complete) p.on_complete(p.submission);
    if (completed != nullptr) completed->push_back(p.submission);
    ++result.ops;
  }
  result.elapsed_us = finish - now_us_;
  now_us_ = finish;
  return result;
}

}  // namespace gecko
