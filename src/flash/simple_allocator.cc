#include "flash/simple_allocator.h"

namespace gecko {

SimpleAllocator::SimpleAllocator(FlashDevice* device, BlockId first_block,
                                 uint32_t num_blocks, IoPurpose erase_purpose)
    : device_(device),
      first_block_(first_block),
      num_blocks_(num_blocks),
      erase_purpose_(erase_purpose),
      stripe_(device->geometry().num_channels),
      actives_(stripe_, kNullAddress),
      free_pool_(stripe_),
      live_count_(num_blocks, 0) {
  GECKO_CHECK_LE(uint64_t{first_block} + num_blocks,
                 device->geometry().num_blocks);
  for (uint32_t i = 0; i < num_blocks; ++i) {
    PushFreeBlock(first_block + i);
  }
}

bool SimpleAllocator::IsActiveBlock(BlockId block) const {
  for (const PhysicalAddress& a : actives_) {
    if (a.IsValid() && a.block == block) return true;
  }
  return false;
}

void SimpleAllocator::PushFreeBlock(BlockId block) {
  free_pool_.Push(block, device_->ChannelOf(block));
}

void SimpleAllocator::ConfigureTempClasses(uint32_t num_classes) {
  GECKO_CHECK_GE(num_classes, 1u);
  for (const PhysicalAddress& a : actives_) {
    GECKO_CHECK(!a.IsValid())
        << "temperature classes must be configured before the first "
           "allocation";
  }
  temp_classes_ = num_classes;
  actives_.assign(uint64_t{temp_classes_} * stripe_, kNullAddress);
  next_slot_.assign(temp_classes_, 0);
}

PhysicalAddress SimpleAllocator::AllocatePage(PageType type, uint32_t stream,
                                              uint8_t temp) {
  (void)type;
  GECKO_CHECK_LT(temp, temp_classes_);
  const uint32_t base = uint32_t{temp} * stripe_;
  const uint32_t pages_per_block = device_->geometry().pages_per_block;
  uint32_t slot;
  if (stream != kNoStream) {
    slot = base + stream % stripe_;  // stream-affine: see PageAllocator
  } else {
    slot = base + next_slot_[temp];
    next_slot_[temp] = (next_slot_[temp] + 1) % stripe_;
  }
  PhysicalAddress* active = &actives_[slot];
  if (!active->IsValid() || active->page >= pages_per_block) {
    BlockId retired = active->IsValid() ? active->block : kInvalidU32;
    GECKO_CHECK_GT(free_pool_.size(), 0u)
        << "SimpleAllocator out of blocks; enlarge the metadata region";
    *active = PhysicalAddress{free_pool_.Take(slot - base), 0};
    // Re-check a retiring active: it may have become fully invalid while
    // it was still the append target (skipped by EraseIfFullyInvalid).
    if (retired != kInvalidU32) EraseIfFullyInvalid(retired);
  }
  PhysicalAddress out = *active;
  ++active->page;
  ++live_count_[out.block - first_block_];
  return out;
}

void SimpleAllocator::OnMetadataPageInvalidated(PhysicalAddress addr) {
  GECKO_CHECK_GE(addr.block, first_block_);
  GECKO_CHECK_LT(addr.block, first_block_ + num_blocks_);
  uint32_t idx = addr.block - first_block_;
  GECKO_CHECK_GT(live_count_[idx], 0u)
      << "double invalidation of metadata page " << addr.ToString();
  --live_count_[idx];
  EraseIfFullyInvalid(addr.block);
}

void SimpleAllocator::EraseIfFullyInvalid(BlockId block) {
  uint32_t idx = block - first_block_;
  // An active block is never erased: its free tail is still needed.
  if (IsActiveBlock(block)) return;
  if (live_count_[idx] != 0) return;
  if (device_->PagesWritten(block) == 0) return;  // already free
  device_->EraseBlock(block, erase_purpose_);
  PushFreeBlock(block);
  ++blocks_erased_;
}

std::vector<BlockId> SimpleAllocator::NonFreeBlocks() const {
  std::vector<BlockId> out;
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    if (device_->PagesWritten(first_block_ + i) > 0) {
      out.push_back(first_block_ + i);
    }
  }
  return out;
}

void SimpleAllocator::RecoverRamState(
    const std::vector<PhysicalAddress>& live_pages) {
  std::fill(live_count_.begin(), live_count_.end(), 0);
  free_pool_.Clear();
  std::fill(actives_.begin(), actives_.end(), kNullAddress);
  std::fill(next_slot_.begin(), next_slot_.end(), 0u);
  for (const PhysicalAddress& pa : live_pages) {
    GECKO_CHECK_GE(pa.block, first_block_);
    GECKO_CHECK_LT(pa.block, first_block_ + num_blocks_);
    ++live_count_[pa.block - first_block_];
  }
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    BlockId block = first_block_ + i;
    if (device_->PagesWritten(block) == 0) {
      PushFreeBlock(block);
    } else if (live_count_[i] == 0) {
      // Only dead pages (e.g. a half-written run): reclaim immediately.
      device_->EraseBlock(block, erase_purpose_);
      PushFreeBlock(block);
      ++blocks_erased_;
    }
  }
  // Partially-written blocks with live pages are abandoned as append
  // targets; fresh active blocks are taken on the next allocations. Their
  // free tail pages are reclaimed when the block becomes fully invalid.
}

}  // namespace gecko
