#include "flash/simple_allocator.h"

#include <unordered_set>

namespace gecko {

SimpleAllocator::SimpleAllocator(FlashDevice* device, BlockId first_block,
                                 uint32_t num_blocks, IoPurpose erase_purpose)
    : device_(device),
      first_block_(first_block),
      num_blocks_(num_blocks),
      erase_purpose_(erase_purpose),
      live_count_(num_blocks, 0) {
  GECKO_CHECK_LE(uint64_t{first_block} + num_blocks,
                 device->geometry().num_blocks);
  for (uint32_t i = 0; i < num_blocks; ++i) {
    free_blocks_.push_back(first_block + i);
  }
}

PhysicalAddress SimpleAllocator::AllocatePage(PageType type) {
  (void)type;
  const uint32_t pages_per_block = device_->geometry().pages_per_block;
  if (!active_.IsValid() || active_.page >= pages_per_block) {
    GECKO_CHECK(!free_blocks_.empty())
        << "SimpleAllocator out of blocks; enlarge the metadata region";
    active_ = PhysicalAddress{free_blocks_.front(), 0};
    free_blocks_.pop_front();
  }
  PhysicalAddress out = active_;
  ++active_.page;
  ++live_count_[out.block - first_block_];
  return out;
}

void SimpleAllocator::OnMetadataPageInvalidated(PhysicalAddress addr) {
  GECKO_CHECK_GE(addr.block, first_block_);
  GECKO_CHECK_LT(addr.block, first_block_ + num_blocks_);
  uint32_t idx = addr.block - first_block_;
  GECKO_CHECK_GT(live_count_[idx], 0u)
      << "double invalidation of metadata page " << addr.ToString();
  --live_count_[idx];
  EraseIfFullyInvalid(addr.block);
}

void SimpleAllocator::EraseIfFullyInvalid(BlockId block) {
  uint32_t idx = block - first_block_;
  // The active block is never erased: its free tail is still needed.
  if (active_.IsValid() && block == active_.block) return;
  if (live_count_[idx] != 0) return;
  if (device_->PagesWritten(block) == 0) return;  // already free
  device_->EraseBlock(block, erase_purpose_);
  free_blocks_.push_back(block);
  ++blocks_erased_;
}

std::vector<BlockId> SimpleAllocator::NonFreeBlocks() const {
  std::vector<BlockId> out;
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    if (device_->PagesWritten(first_block_ + i) > 0) {
      out.push_back(first_block_ + i);
    }
  }
  return out;
}

void SimpleAllocator::RecoverRamState(
    const std::vector<PhysicalAddress>& live_pages) {
  std::fill(live_count_.begin(), live_count_.end(), 0);
  free_blocks_.clear();
  active_ = kNullAddress;
  for (const PhysicalAddress& pa : live_pages) {
    GECKO_CHECK_GE(pa.block, first_block_);
    GECKO_CHECK_LT(pa.block, first_block_ + num_blocks_);
    ++live_count_[pa.block - first_block_];
  }
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    BlockId block = first_block_ + i;
    if (device_->PagesWritten(block) == 0) {
      free_blocks_.push_back(block);
    } else if (live_count_[i] == 0) {
      // Only dead pages (e.g. a half-written run): reclaim immediately.
      device_->EraseBlock(block, erase_purpose_);
      free_blocks_.push_back(block);
      ++blocks_erased_;
    }
  }
  // Partially-written blocks with live pages are abandoned as append
  // targets; a fresh active block is taken on the next allocation. Their
  // free tail pages are reclaimed when the block becomes fully invalid.
}

}  // namespace gecko
