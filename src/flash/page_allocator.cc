#include "flash/page_allocator.h"

#include "flash/flash_device.h"
#include "util/check.h"

namespace gecko {

PlacedProgram AllocateAndProgram(FlashDevice* device, PageAllocator* allocator,
                                 PageType type, uint32_t stream,
                                 SpareArea spare, uint64_t payload,
                                 IoPurpose purpose) {
  // Bound: a pathological trigger could fail every page of the current
  // active block (pages_per_block) and its replacement; past that, the
  // medium is beyond saving and aborting beats looping forever.
  uint32_t attempts_left = 2 * device->geometry().pages_per_block + 8;
  PlacedProgram out;
  for (;;) {
    // The spare's temperature class doubles as the placement hint, so a
    // re-placed program lands back in its own stream.
    PhysicalAddress addr = allocator->AllocatePage(type, stream, spare.temp);
    ProgramResult r = device->ProgramPage(addr, spare, payload, purpose);
    if (r.ok) {
      out.addr = addr;
      out.seq = r.seq;
      return out;
    }
    ++out.remaps;
    allocator->OnProgramFailed(addr);
    GECKO_CHECK_GT(--attempts_left, 0u)
        << "program re-place loop exhausted at " << addr.ToString()
        << " (" << out.remaps << " consecutive program faults)";
  }
}

}  // namespace gecko
