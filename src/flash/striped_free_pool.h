// Per-channel free-block pool shared by every channel-striped allocator
// (BlockManager, SimpleAllocator, PvmDriver).
//
// Blocks are pooled by the channel they live on. Taking prefers the
// requested channel and steals from the richest channel when that pool
// runs dry — striping is best-effort; running out of space while free
// blocks remain elsewhere is not an option. The caller supplies each
// block's channel (Geometry::ChannelOf) so the pool stays free of device
// dependencies.

#ifndef GECKOFTL_FLASH_STRIPED_FREE_POOL_H_
#define GECKOFTL_FLASH_STRIPED_FREE_POOL_H_

#include <deque>
#include <vector>

#include "flash/geometry.h"
#include "flash/types.h"
#include "util/check.h"

namespace gecko {

class StripedFreePool {
 public:
  explicit StripedFreePool(uint32_t num_channels) : pools_(num_channels) {
    GECKO_CHECK_GE(num_channels, 1u);
  }

  /// Returns `block` (resident on `channel`) to the pool.
  void Push(BlockId block, ChannelId channel) {
    pools_[channel].push_back(block);
    ++size_;
  }

  /// Pops a free block, preferring channel `preferred`, stealing from the
  /// richest channel otherwise. Aborts when the pool is empty — callers
  /// gate on size() / run GC first.
  BlockId Take(ChannelId preferred) {
    GECKO_CHECK_GT(size_, 0u) << "free pool exhausted";
    std::deque<BlockId>* pool = &pools_[preferred];
    if (pool->empty()) {
      size_t best = 0;
      for (auto& candidate : pools_) {
        if (candidate.size() > best) {
          best = candidate.size();
          pool = &candidate;
        }
      }
    }
    BlockId block = pool->front();
    pool->pop_front();
    --size_;
    return block;
  }

  /// Free blocks across all channels.
  uint32_t size() const { return size_; }

  /// Free blocks pooled on channel `c`.
  uint32_t size_on(ChannelId c) const {
    return static_cast<uint32_t>(pools_[c].size());
  }

  /// Drops every pooled block (power-failure recovery).
  void Clear() {
    for (auto& pool : pools_) pool.clear();
    size_ = 0;
  }

 private:
  std::vector<std::deque<BlockId>> pools_;
  uint32_t size_ = 0;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_STRIPED_FREE_POOL_H_
