// Deterministic media-fault injection for the simulated NAND device.
//
// Real very-large flash devices are defined by their error behaviour: reads
// need retries as cells drift, programs fail and consume the page, erases
// fail and retire the block, and shipped devices carry factory-marked bad
// blocks. The FaultModel decides — reproducibly, from a seed — which ops
// fail and how, while FlashDevice applies the consequences to the medium:
//
//   transient read fault  succeeds after <= max_read_retries extra read
//                         ops (latency only; data is intact)
//   hard read fault       uncorrectable: the read returns media_error and
//                         the FTL surfaces kIoError per extent
//   program fault         the page is consumed and marked bad; the FTL
//                         must re-place the data on a fresh page
//   erase fault           the block is permanently retired (grown bad)
//
// Rate-based faults are rolled per op from a private seeded Rng. Hard read
// faults by rate apply only to user-data page reads (IoPurpose::kUserRead):
// metadata and recovery reads keep their durability story, mirroring the
// much stronger ECC/redundancy firmware gives metadata. Transient faults
// apply to every full page read. Spare reads never fault by rate.
//
// Targeted triggers let tests arm precise failures ("fail the next program
// landing on block B") independently of the rates; each fires once.

#ifndef GECKOFTL_FLASH_FAULT_MODEL_H_
#define GECKOFTL_FLASH_FAULT_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flash/types.h"
#include "util/random.h"

namespace gecko {

/// Knobs for the fault plane. Default-constructed == perfect medium (the
/// pre-fault-injection behaviour, bit for bit).
struct FaultConfig {
  bool enabled = false;   // master switch; false short-circuits every roll
  uint64_t seed = 1;      // seed for the fault plane's private Rng

  double transient_read_fault_rate = 0.0;  // per full page read
  double hard_read_fault_rate = 0.0;       // per kUserRead page read
  double program_fault_rate = 0.0;         // per page program
  double erase_fault_rate = 0.0;           // per block erase

  /// Retry budget R: a transient fault always clears within [1, R] extra
  /// read ops (the device charges each through its channel queue).
  uint32_t max_read_retries = 3;

  /// Blocks retired before first use (shipped bad-block list).
  std::vector<BlockId> factory_bad;
};

/// Seeded fault oracle consulted by FlashDevice on every op. Not
/// thread-safe; owned by the (single-threaded) device.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config)
      : config_(config), rng_(config.seed) {}

  const FaultConfig& config() const { return config_; }

  // --- Per-op rolls (consulted by FlashDevice) ---------------------------

  /// Extra read ops a transient fault costs this page read: 0 = no fault,
  /// otherwise in [1, max_read_retries]. Armed triggers fire first.
  uint32_t RollTransientReadRetries(PhysicalAddress addr);

  /// Whether this user-data page read is uncorrectable. Armed triggers
  /// fire regardless of purpose; the caller gates the rate-based roll to
  /// kUserRead.
  bool RollHardReadFault(PhysicalAddress addr, bool rate_eligible);

  /// Whether the program landing on `addr` fails (page goes bad).
  bool RollProgramFault(PhysicalAddress addr);

  /// Whether the erase of `block` fails (block is retired).
  bool RollEraseFault(BlockId block);

  // --- Targeted triggers (tests) -----------------------------------------
  // Each fires once, then disarms. Triggers work even when `enabled` is
  // false and no rates are set, so tests can inject one precise fault into
  // an otherwise perfect medium.

  /// Fail the next `count` programs that land anywhere on `block`.
  void ArmProgramFault(BlockId block, uint32_t count = 1);
  /// Fail the next erase of `block`.
  void ArmEraseFault(BlockId block);
  /// Make the next page read of `addr` uncorrectable.
  void ArmHardReadFault(PhysicalAddress addr);
  /// Make the next page read of `addr` cost `retries` extra read ops.
  void ArmTransientReadFault(PhysicalAddress addr, uint32_t retries);

  /// Whether any targeted trigger is still armed (test hygiene checks).
  bool HasArmedTriggers() const {
    return !armed_program_.empty() || !armed_erase_.empty() ||
           !armed_hard_read_.empty() || !armed_transient_read_.empty();
  }

 private:
  static uint64_t PageKey(PhysicalAddress addr) {
    return (uint64_t{addr.block} << 32) | addr.page;
  }

  FaultConfig config_;
  Rng rng_;
  std::unordered_map<BlockId, uint32_t> armed_program_;   // block -> count
  std::unordered_map<BlockId, uint32_t> armed_erase_;     // block -> count
  std::unordered_map<uint64_t, uint32_t> armed_hard_read_;       // page key
  std::unordered_map<uint64_t, uint32_t> armed_transient_read_;  // -> retries
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_FAULT_MODEL_H_
