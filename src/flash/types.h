// Basic address and page-type vocabulary shared by the whole library.

#ifndef GECKOFTL_FLASH_TYPES_H_
#define GECKOFTL_FLASH_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace gecko {

/// Logical page number: the address space the application sees.
using Lpn = uint32_t;

/// Block index within the device.
using BlockId = uint32_t;

/// Sentinel for "no logical page" / "no block".
inline constexpr uint32_t kInvalidU32 = std::numeric_limits<uint32_t>::max();

/// Physical address of one flash page: block index + page offset in block.
struct PhysicalAddress {
  BlockId block = kInvalidU32;
  uint32_t page = kInvalidU32;

  bool IsValid() const { return block != kInvalidU32; }

  bool operator==(const PhysicalAddress& o) const {
    return block == o.block && page == o.page;
  }
  bool operator!=(const PhysicalAddress& o) const { return !(*this == o); }
  /// Lexicographic order; used by ordered containers in tests.
  bool operator<(const PhysicalAddress& o) const {
    return block != o.block ? block < o.block : page < o.page;
  }

  // Built with append rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on the inlined concatenation under -O2.
  std::string ToString() const {
    std::string s = "(";
    s += std::to_string(block);
    s += ',';
    s += std::to_string(page);
    s += ')';
    return s;
  }
};

inline constexpr PhysicalAddress kNullAddress{};

/// What a flash page stores. The paper's three block groups (Figure 8):
/// user data, translation pages, and page-validity metadata (Gecko runs,
/// flash-resident PVB pages, or IB-FTL log pages, depending on the FTL).
enum class PageType : uint8_t {
  kFree = 0,     // never written since the last erase
  kUser = 1,
  kTranslation = 2,
  kPvm = 3,      // page-validity metadata ("Gecko blocks" in the paper)
};

inline const char* PageTypeName(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kUser: return "user";
    case PageType::kTranslation: return "translation";
    case PageType::kPvm: return "pvm";
  }
  return "?";
}

}  // namespace gecko

template <>
struct std::hash<gecko::PhysicalAddress> {
  size_t operator()(const gecko::PhysicalAddress& a) const {
    return std::hash<uint64_t>()((uint64_t{a.block} << 32) | a.page);
  }
};

#endif  // GECKOFTL_FLASH_TYPES_H_
