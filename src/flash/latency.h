// Latency model for flash operations.
//
// Constants follow the paper's evaluation (Section 5 and footnotes 4/5):
// a page read takes ~100 us, a page write ~1 ms (delta = 10), and a spare
// area read ~3 us (spare areas are 32x smaller than pages). Erase latency
// is not part of the paper's write-amplification metric but is tracked for
// completeness.

#ifndef GECKOFTL_FLASH_LATENCY_H_
#define GECKOFTL_FLASH_LATENCY_H_

namespace gecko {

/// Operation latencies in microseconds plus the read/write asymmetry delta.
struct LatencyModel {
  double page_read_us = 100.0;
  double page_write_us = 1000.0;
  double spare_read_us = 3.0;    // ~ page_read / 32
  double erase_us = 2000.0;

  /// delta: time to write a flash page / time to read one (10 in the paper).
  double Delta() const { return page_write_us / page_read_us; }
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_LATENCY_H_
