// Device geometry: the architectural parameters of Figure 2 in the paper,
// extended with the channel/die topology of real very-large devices.

#ifndef GECKOFTL_FLASH_GEOMETRY_H_
#define GECKOFTL_FLASH_GEOMETRY_H_

#include <cstdint>

#include "util/check.h"

namespace gecko {

/// Index of one flash channel (an independent bus with its own latency
/// clock; see flash/channel_queue.h).
using ChannelId = uint32_t;

/// Architectural parameters of a simulated flash device. Symbols follow the
/// paper: K blocks, B pages per block, P bytes per page, R the ratio of
/// logical to physical capacity (over-provisioning = 1 - R).
///
/// Channels/dies: a very large device is built from `num_channels`
/// independent channels, each hosting `dies_per_channel` dies. Blocks are
/// interleaved across channels (block k lives on channel k mod
/// num_channels), so consecutive block allocations naturally land on
/// distinct channels. Operations on different channels proceed in
/// parallel; dies on one channel share its bus and therefore its latency
/// clock (bus-limited model).
struct Geometry {
  uint32_t num_blocks = 1024;       // K
  uint32_t pages_per_block = 128;   // B
  uint32_t page_bytes = 4096;       // P
  double logical_ratio = 0.7;       // R
  uint32_t num_channels = 1;        // independent parallel channels
  uint32_t dies_per_channel = 1;    // dies sharing one channel bus

  uint64_t TotalPages() const {
    return uint64_t{num_blocks} * pages_per_block;
  }

  uint64_t PhysicalBytes() const { return TotalPages() * page_bytes; }

  /// Number of logical pages exposed to the application (R * K * B).
  uint64_t NumLogicalPages() const {
    return static_cast<uint64_t>(TotalPages() * logical_ratio);
  }

  uint64_t LogicalBytes() const { return NumLogicalPages() * page_bytes; }

  /// Spare area size; physically adjacent to each page and 32x smaller [1].
  uint32_t SpareBytes() const { return page_bytes / 32; }

  /// Mapping entries per translation page (4-byte physical addresses).
  uint32_t MappingEntriesPerTranslationPage() const { return page_bytes / 4; }

  /// Number of translation pages needed to map the logical space.
  uint64_t NumTranslationPages() const {
    uint32_t per_page = MappingEntriesPerTranslationPage();
    return (NumLogicalPages() + per_page - 1) / per_page;
  }

  /// Translation table size in bytes (4 * K * B * R in the paper).
  uint64_t TranslationTableBytes() const { return NumLogicalPages() * 4; }

  /// Channel hosting `block` (block-interleaved striping). Dies on one
  /// channel share its bus and therefore its latency clock, so placement
  /// is decided at channel granularity only.
  ChannelId ChannelOf(uint32_t block) const { return block % num_channels; }

  void Validate() const {
    GECKO_CHECK_GT(num_blocks, 0u);
    GECKO_CHECK_GT(pages_per_block, 0u);
    GECKO_CHECK_GE(page_bytes, 64u);
    GECKO_CHECK_GT(logical_ratio, 0.0);
    GECKO_CHECK_LT(logical_ratio, 1.0);
    GECKO_CHECK_GE(num_channels, 1u);
    GECKO_CHECK_LE(num_channels, num_blocks);
    GECKO_CHECK_GE(dies_per_channel, 1u);
  }

  /// Returns a copy with the channel count replaced (builder-style, for
  /// channel-scaling sweeps).
  Geometry WithChannels(uint32_t channels) const {
    Geometry g = *this;
    g.num_channels = channels;
    return g;
  }

  /// The paper's running example (Figure 2): a 2 TB device.
  static Geometry PaperScale() {
    Geometry g;
    g.num_blocks = 1u << 22;      // K = 2^22
    g.pages_per_block = 1u << 7;  // B = 2^7
    g.page_bytes = 1u << 12;      // P = 2^12
    g.logical_ratio = 0.7;
    g.num_channels = 16;          // modern enterprise-card topology
    g.dies_per_channel = 4;
    return g;
  }

  /// Small geometry suitable for unit tests and fast simulations.
  static Geometry TestScale() {
    Geometry g;
    g.num_blocks = 256;
    g.pages_per_block = 32;
    g.page_bytes = 1024;
    g.logical_ratio = 0.7;
    return g;
  }
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_GEOMETRY_H_
