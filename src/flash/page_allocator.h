// Interface through which flash-resident structures obtain page slots.
//
// The FTL's BlockManager implements this for the full system (three block
// groups with one active append block each, Figure 8 of the paper). A
// self-contained SimpleAllocator is provided for experiments that exercise
// a page-validity structure in isolation (Sections 5.1/5.2).

#ifndef GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
#define GECKOFTL_FLASH_PAGE_ALLOCATOR_H_

#include "flash/types.h"

namespace gecko {

/// "No stream": the allocator is free to place the page anywhere (it
/// round-robins across channels for maximum parallelism).
inline constexpr uint32_t kNoStream = kInvalidU32;

/// Allocates flash pages append-only and tracks metadata-page liveness so
/// fully-invalid metadata blocks can be erased (the GeckoFTL GC policy for
/// metadata, Section 4.2).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;

  /// Returns the address of the next free page for content of `type`.
  /// The caller must program it immediately (the device enforces sequential
  /// programming). Aborts if the device is configured too small.
  ///
  /// `stream` is a placement hint for channel-striped allocators: pages of
  /// one stream append to one stripe slot (clustered, so metadata that
  /// dies together — one Gecko run, one translation page's version chain —
  /// frees whole blocks together), while different streams land on
  /// different channels (stream % num_channels) and proceed in parallel.
  /// kNoStream round-robins across channels; pages with uniform lifetimes
  /// (user data, FIFO logs) use it for maximum striping.
  virtual PhysicalAddress AllocatePage(PageType type,
                                       uint32_t stream = kNoStream) = 0;

  /// Marks a previously-written metadata page obsolete. When every page of
  /// a metadata block is obsolete, the implementation may erase the block.
  virtual void OnMetadataPageInvalidated(PhysicalAddress addr) = 0;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
