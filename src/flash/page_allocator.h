// Interface through which flash-resident structures obtain page slots.
//
// The FTL's BlockManager implements this for the full system (three block
// groups with one active append block each, Figure 8 of the paper). A
// self-contained SimpleAllocator is provided for experiments that exercise
// a page-validity structure in isolation (Sections 5.1/5.2).

#ifndef GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
#define GECKOFTL_FLASH_PAGE_ALLOCATOR_H_

#include <cstdint>

#include "flash/spare_area.h"
#include "flash/types.h"

namespace gecko {

class FlashDevice;
enum class IoPurpose : uint8_t;

/// "No stream": the allocator is free to place the page anywhere (it
/// round-robins across channels for maximum parallelism).
inline constexpr uint32_t kNoStream = kInvalidU32;

/// Allocates flash pages append-only and tracks metadata-page liveness so
/// fully-invalid metadata blocks can be erased (the GeckoFTL GC policy for
/// metadata, Section 4.2).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;

  /// Returns the address of the next free page for content of `type`.
  /// The caller must program it immediately (the device enforces sequential
  /// programming). Aborts if the device is configured too small.
  ///
  /// `stream` is a placement hint for channel-striped allocators: pages of
  /// one stream append to one stripe slot (clustered, so metadata that
  /// dies together — one Gecko run, one translation page's version chain —
  /// frees whole blocks together), while different streams land on
  /// different channels (stream % num_channels) and proceed in parallel.
  /// kNoStream round-robins across channels; pages with uniform lifetimes
  /// (user data, FIFO logs) use it for maximum striping.
  ///
  /// `temp` is the write-temperature class of a user page (ftl/hotness.h):
  /// temperature-aware allocators keep one set of per-channel active
  /// blocks per class, so pages with similar expected lifetimes share
  /// blocks and GC rarely finds live cold data in hot victims. Metadata
  /// pages and single-stream configurations pass 0, which degenerates to
  /// the classic one-pool-per-group layout.
  virtual PhysicalAddress AllocatePage(PageType type,
                                       uint32_t stream = kNoStream,
                                       uint8_t temp = 0) = 0;

  /// Marks a previously-written metadata page obsolete. When every page of
  /// a metadata block is obsolete, the implementation may erase the block.
  virtual void OnMetadataPageInvalidated(PhysicalAddress addr) = 0;

  /// The medium failed the program at `addr` (the page is consumed and
  /// bad). Lets allocators track per-block program-fail counts and retire
  /// blocks that exceed their budget. Default: no bookkeeping.
  virtual void OnProgramFailed(PhysicalAddress addr) { (void)addr; }
};

/// What one retry-and-re-place program cost.
struct PlacedProgram {
  PhysicalAddress addr;  // where the data finally landed
  uint64_t seq = 0;      // its stamped sequence number
  uint32_t remaps = 0;   // program faults absorbed along the way
};

/// Programs (spare, payload) on a freshly allocated page, transparently
/// re-placing it on a new allocation each time the medium fails the
/// program — the single write primitive every fault-tolerant flash write
/// in the system goes through (user writes, GC migration, translation
/// commits, PVM metadata, Gecko runs). Each failed attempt is reported to
/// `allocator->OnProgramFailed` before the next allocation, so grown-bad
/// bookkeeping (and block retirement) happens between attempts. Aborts
/// after `2 * pages_per_block + 8` consecutive faults: that many failures
/// means the fault rate is so high no placement can succeed.
PlacedProgram AllocateAndProgram(FlashDevice* device, PageAllocator* allocator,
                                 PageType type, uint32_t stream,
                                 SpareArea spare, uint64_t payload,
                                 IoPurpose purpose);

}  // namespace gecko

#endif  // GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
