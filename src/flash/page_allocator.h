// Interface through which flash-resident structures obtain page slots.
//
// The FTL's BlockManager implements this for the full system (three block
// groups with one active append block each, Figure 8 of the paper). A
// self-contained SimpleAllocator is provided for experiments that exercise
// a page-validity structure in isolation (Sections 5.1/5.2).

#ifndef GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
#define GECKOFTL_FLASH_PAGE_ALLOCATOR_H_

#include "flash/types.h"

namespace gecko {

/// Allocates flash pages append-only and tracks metadata-page liveness so
/// fully-invalid metadata blocks can be erased (the GeckoFTL GC policy for
/// metadata, Section 4.2).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;

  /// Returns the address of the next free page for content of `type`.
  /// The caller must program it immediately (the device enforces sequential
  /// programming). Aborts if the device is configured too small.
  virtual PhysicalAddress AllocatePage(PageType type) = 0;

  /// Marks a previously-written metadata page obsolete. When every page of
  /// a metadata block is obsolete, the implementation may erase the block.
  virtual void OnMetadataPageInvalidated(PhysicalAddress addr) = 0;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_PAGE_ALLOCATOR_H_
