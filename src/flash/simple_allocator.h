// Stand-alone page allocator for experiments that run a page-validity
// structure without a full FTL (the Section 5.1/5.2 comparisons).
//
// It owns a contiguous range of device blocks, appends pages of one type,
// tracks per-block live-page counts, and erases a block as soon as all of
// its pages are obsolete (GeckoFTL's metadata-block policy, Section 4.2).
//
// Like the FTL's BlockManager, the allocator is channel-striped: it keeps
// one active append block per channel and round-robins allocations across
// them, so batched metadata writes (PVB chunk commits, Gecko run flushes)
// fan out over the channel-parallel device. One channel = the classic
// single-active behaviour.

#ifndef GECKOFTL_FLASH_SIMPLE_ALLOCATOR_H_
#define GECKOFTL_FLASH_SIMPLE_ALLOCATOR_H_

#include <vector>

#include "flash/flash_device.h"
#include "flash/page_allocator.h"
#include "flash/striped_free_pool.h"

namespace gecko {

/// Append-only allocator over the block range [first_block, first_block +
/// num_blocks). Aborts when it runs out of free blocks, so experiments must
/// size the range generously (metadata occupies ~0.1% of a real device).
class SimpleAllocator : public PageAllocator {
 public:
  SimpleAllocator(FlashDevice* device, BlockId first_block, uint32_t num_blocks,
                  IoPurpose erase_purpose = IoPurpose::kPvm);

  /// Grows the allocator to `num_classes` sets of per-channel active
  /// blocks (temperature-separated experiments). Must run before the
  /// first allocation; 1 keeps the classic per-channel layout.
  void ConfigureTempClasses(uint32_t num_classes);

  PhysicalAddress AllocatePage(PageType type, uint32_t stream = kNoStream,
                               uint8_t temp = 0) override;
  void OnMetadataPageInvalidated(PhysicalAddress addr) override;

  /// Blocks currently holding at least one written page (for recovery scans).
  std::vector<BlockId> NonFreeBlocks() const;

  uint32_t num_free_blocks() const { return free_pool_.size(); }
  uint64_t blocks_erased() const { return blocks_erased_; }

  /// Drops and rebuilds the allocator's RAM bookkeeping after a power
  /// failure. `live_pages` lists every metadata page that is still live;
  /// all other written pages in the allocator's range count as invalid.
  void RecoverRamState(const std::vector<PhysicalAddress>& live_pages);

 private:
  void EraseIfFullyInvalid(BlockId block);
  bool IsActiveBlock(BlockId block) const;
  void PushFreeBlock(BlockId block);

  FlashDevice* device_;
  BlockId first_block_;
  uint32_t num_blocks_;
  IoPurpose erase_purpose_;
  uint32_t stripe_;  // active slots per class = geometry.num_channels
  uint32_t temp_classes_ = 1;
  /// Next page to hand out: temp_classes_ * stripe_ slots, class-major
  /// (slot = temp * stripe_ + channel), with a cursor per class.
  std::vector<PhysicalAddress> actives_;
  std::vector<uint32_t> next_slot_ = std::vector<uint32_t>(1, 0);
  StripedFreePool free_pool_;
  std::vector<uint32_t> live_count_;  // per owned block, indexed from 0
  uint64_t blocks_erased_ = 0;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_SIMPLE_ALLOCATOR_H_
