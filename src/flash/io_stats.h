// IO accounting for the flash device, broken down by purpose and channel.
//
// Every device operation is tagged with an IoPurpose so experiments can
// report the write-amplification breakdown of Figure 13 (user data vs.
// translation metadata vs. page-validity metadata) and the per-interval
// series of Figure 9. The channel-parallel backend additionally feeds
// per-channel busy time and queue-depth watermarks through the
// OnChannelSubmit/OnChannelComplete hooks, so experiments can report
// channel utilization (busy time / simulated elapsed time).

#ifndef GECKOFTL_FLASH_IO_STATS_H_
#define GECKOFTL_FLASH_IO_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "flash/latency.h"
#include "flash/latency_histogram.h"

namespace gecko {

/// Why an IO happened. kUserWrite/kUserRead are the application's own IOs;
/// everything else is internal and contributes to write-amplification.
enum class IoPurpose : uint8_t {
  kUserWrite = 0,     // the application write landing on flash
  kUserRead,          // the application read of a user page
  kGcMigration,       // reads/writes that move live pages off a GC victim
  kTranslation,       // translation-page reads/writes (sync ops, misses)
  kPvm,               // page-validity metadata (Gecko runs / PVB / PVL)
  kRecovery,          // IOs performed while recovering from power failure
  kWearLeveling,      // wear-leveling scans and migrations
  kOther,
};

inline constexpr int kNumIoPurposes = 8;

const char* IoPurposeName(IoPurpose p);

/// What a recorded end-to-end latency sample was servicing. One sample is
/// recorded per host request (its device batch window's makespan), split
/// so the tail of user-visible writes is measurable separately from reads,
/// trims, flushes, and background-maintenance windows (which run while the
/// host is idle and must NOT pollute the user-visible distributions).
enum class RequestClass : uint8_t {
  kWrite = 0,    // host kWrite requests
  kRead,         // host kRead requests
  kTrim,         // host kTrim requests
  kFlush,        // host kFlush requests
  kMaintenance,  // background maintenance ticks (GC steps, idle flushes)
};

inline constexpr int kNumRequestClasses = 5;

const char* RequestClassName(RequestClass c);

/// Raw operation counts, indexable by purpose. Value-type; subtractable to
/// form per-interval deltas.
struct IoCounters {
  std::array<uint64_t, kNumIoPurposes> page_reads{};
  std::array<uint64_t, kNumIoPurposes> page_writes{};
  std::array<uint64_t, kNumIoPurposes> spare_reads{};
  std::array<uint64_t, kNumIoPurposes> erases{};
  uint64_t logical_writes = 0;  // application-level page updates
  uint64_t logical_reads = 0;
  uint64_t logical_trims = 0;   // host trim/discard commands, per page

  uint64_t TotalReads() const;
  uint64_t TotalWrites() const;
  uint64_t TotalSpareReads() const;
  uint64_t TotalErases() const;

  /// Internal IOs: everything except the application's own page IOs.
  uint64_t InternalReads() const;
  uint64_t InternalWrites() const;

  uint64_t ReadsFor(IoPurpose p) const {
    return page_reads[static_cast<int>(p)];
  }
  uint64_t WritesFor(IoPurpose p) const {
    return page_writes[static_cast<int>(p)];
  }

  IoCounters operator-(const IoCounters& other) const;
  /// Element-wise accumulation (merging per-shard device views).
  IoCounters& operator+=(const IoCounters& other);

  /// Write-amplification as defined in Section 5:
  ///   WA = (i_writes + i_reads / delta) / logical_writes
  /// where i_writes/i_reads are internal IOs per application update.
  double WriteAmplification(double delta) const;

  /// WA contribution of a single purpose (for the Figure 13 breakdown).
  double WriteAmplificationFor(IoPurpose p, double delta) const;

  std::string DebugString() const;
};

/// Merged read-only view over the IoStats of several devices — the
/// aggregate a sharded front end reports when each LPN shard owns a
/// private FlashDevice (ftl/sharded_ftl.h). Operation counts add;
/// simulated time takes the max across shards (their device clocks run
/// in parallel, so the aggregate timeline is the slowest shard's);
/// latency distributions merge bucket-wise.
struct AggregateIoView {
  IoCounters counters;
  double elapsed_us = 0;         // max of per-shard elapsed times
  uint64_t submissions = 0;      // summed channel submissions
  uint32_t max_queue_depth = 0;  // deepest channel queue of any shard
  uint64_t host_admissions = 0;  // summed host-queue admissions
  uint64_t read_retries = 0;         // summed media-fault counters
  uint64_t transient_read_faults = 0;
  uint64_t hard_read_faults = 0;
  uint64_t program_faults = 0;
  uint64_t erase_faults = 0;
  std::array<LatencyHistogram, kNumRequestClasses> request_latency;

  /// Folds one shard's IoStats into the view.
  void Absorb(const class IoStats& stats);
};

/// Mutable accumulator owned by the FlashDevice. Operation *counts* are
/// recorded at submission time (OnPageRead & co.); simulated *time* flows
/// in from the channel pipeline (AdvanceElapsed / OnChannelComplete), so
/// elapsed_us() reflects channel overlap: a striped batch advances the
/// clock by its makespan, not by the sum of its op latencies. With one
/// channel — or serial submission — the two coincide.
class IoStats {
 public:
  explicit IoStats(LatencyModel latency = LatencyModel(),
                   uint32_t num_channels = 1)
      : latency_(latency),
        channel_busy_us_(num_channels, 0.0),
        channel_ops_(num_channels, 0),
        channel_depth_(num_channels, 0) {}

  void OnPageRead(IoPurpose p) {
    ++counters_.page_reads[static_cast<int>(p)];
  }
  void OnPageWrite(IoPurpose p) {
    ++counters_.page_writes[static_cast<int>(p)];
  }
  void OnSpareRead(IoPurpose p) {
    ++counters_.spare_reads[static_cast<int>(p)];
  }
  void OnErase(IoPurpose p) {
    ++counters_.erases[static_cast<int>(p)];
  }
  void OnLogicalWrite() { ++counters_.logical_writes; }
  void OnLogicalRead() { ++counters_.logical_reads; }
  void OnLogicalTrim() { ++counters_.logical_trims; }

  // --- Channel pipeline hooks (fed by FlashDevice) ----------------------

  /// An op entered channel `c`'s queue: queue-depth accounting.
  void OnChannelSubmit(uint32_t c) {
    ++submissions_;
    uint32_t depth = ++channel_depth_[c];
    if (depth > max_queue_depth_) max_queue_depth_ = depth;
  }

  /// An op on channel `c` retired after `service_us` of channel time.
  void OnChannelComplete(uint32_t c, double service_us) {
    --channel_depth_[c];
    channel_busy_us_[c] += service_us;
    ++channel_ops_[c];
  }

  /// Advances the simulated clock by one drained batch's makespan.
  void AdvanceElapsed(double us) { elapsed_us_ += us; }

  // --- Host submission-queue accounting (fed by the FTL's async engine) --
  // Distinct from the per-channel depths above: this gauge counts whole
  // host *requests* admitted and not yet completed (parked on a dependency
  // or executing), i.e. the queue depth the host actually achieved.

  /// A request was admitted into the host submission queue.
  void OnHostAdmit() {
    ++host_admissions_;
    uint32_t depth = ++host_inflight_;
    if (depth > host_inflight_watermark_) host_inflight_watermark_ = depth;
  }
  /// An in-flight request completed (or was aborted by a power failure).
  void OnHostComplete() {
    if (host_inflight_ > 0) --host_inflight_;
  }
  /// An admission was refused because the queue was at its in-flight cap.
  void OnHostQueueFull() { ++host_queue_full_; }

  /// Requests currently in flight (admitted, not yet completed).
  uint32_t host_inflight() const { return host_inflight_; }
  /// Deepest the host queue ever got (lifetime watermark).
  uint32_t host_inflight_watermark() const { return host_inflight_watermark_; }
  /// Lifetime admissions into the host queue.
  uint64_t host_admissions() const { return host_admissions_; }
  /// Lifetime kQueueFull rejections.
  uint64_t host_queue_full() const { return host_queue_full_; }

  // --- Translation-miss pipeline accounting (fed by the async engine) ----
  // A "miss fetch" is one in-flight translation-page read servicing one or
  // more parked read extents. The gauge counts distinct fetches in flight
  // (== waiting-list entries), the coalesced counter counts extents that
  // joined an already-in-flight fetch instead of issuing their own, and
  // the stall histogram records each parked extent's park-to-replay time
  // in device microseconds.

  /// A translation-page fetch was issued for a parked miss.
  void OnMissFetchIssued() {
    ++miss_fetches_issued_;
    uint32_t depth = ++miss_fetch_inflight_;
    if (depth > miss_fetch_inflight_watermark_) {
      miss_fetch_inflight_watermark_ = depth;
    }
  }
  /// An in-flight miss fetch completed (or was aborted by a power failure).
  void OnMissFetchDone() {
    if (miss_fetch_inflight_ > 0) --miss_fetch_inflight_;
  }
  /// A missing extent coalesced onto an already-in-flight fetch.
  void OnCoalescedMiss() { ++coalesced_misses_; }
  /// A parked extent was replayed `us` device-microseconds after parking.
  void OnMissStall(double us) { miss_stall_.Record(us); }

  /// Distinct translation-page fetches currently in flight.
  uint32_t miss_fetch_inflight() const { return miss_fetch_inflight_; }
  /// Deepest the miss-fetch gauge ever got (lifetime watermark).
  uint32_t miss_fetch_inflight_watermark() const {
    return miss_fetch_inflight_watermark_;
  }
  /// Lifetime miss fetches issued.
  uint64_t miss_fetches_issued() const { return miss_fetches_issued_; }
  /// Lifetime extents that coalesced onto an in-flight fetch.
  uint64_t coalesced_misses() const { return coalesced_misses_; }
  /// Park-to-replay stall distribution of parked extents.
  const LatencyHistogram& MissStall() const { return miss_stall_; }

  // --- Media-fault accounting (fed by the FlashDevice fault plane) -------
  // A transient read fault is absorbed by the device's retry loop (extra
  // channel time, no data loss); `n` is the number of extra read ops it
  // cost. A hard read fault survives the retry budget and surfaces to the
  // FTL as media_error. Program/erase faults consume the page / retire the
  // block respectively.

  void OnTransientReadFault(uint32_t n) {
    ++transient_read_faults_;
    read_retries_ += n;
  }
  void OnHardReadFault() { ++hard_read_faults_; }
  void OnProgramFault() { ++program_faults_; }
  void OnEraseFault() { ++erase_faults_; }

  /// Lifetime extra read ops spent absorbing transient faults.
  uint64_t read_retries() const { return read_retries_; }
  /// Lifetime reads that needed at least one retry (and then succeeded).
  uint64_t transient_read_faults() const { return transient_read_faults_; }
  /// Lifetime uncorrectable reads surfaced to the FTL.
  uint64_t hard_read_faults() const { return hard_read_faults_; }
  /// Lifetime page programs the medium failed (page marked bad).
  uint64_t program_faults() const { return program_faults_; }
  /// Lifetime block erases the medium failed (block retired).
  uint64_t erase_faults() const { return erase_faults_; }

  // --- Per-request latency histograms -----------------------------------

  /// Records one request's end-to-end latency (its batch window makespan).
  /// Fed by the FTL once per serviced host request / maintenance tick.
  void OnRequestLatency(RequestClass c, double us) {
    request_latency_[static_cast<int>(c)].Record(us);
  }
  const LatencyHistogram& RequestLatency(RequestClass c) const {
    return request_latency_[static_cast<int>(c)];
  }

  const IoCounters& counters() const { return counters_; }
  const LatencyModel& latency() const { return latency_; }
  /// Simulated time: sum of drained-batch makespans (channel-overlapped).
  double elapsed_us() const { return elapsed_us_; }

  uint32_t num_channels() const {
    return static_cast<uint32_t>(channel_busy_us_.size());
  }
  /// Total channel-busy time of channel `c` (service time, no queueing).
  double ChannelBusyUs(uint32_t c) const { return channel_busy_us_[c]; }
  /// Ops retired by channel `c`.
  uint64_t ChannelOps(uint32_t c) const { return channel_ops_[c]; }
  /// Fraction of simulated time channel `c` spent servicing ops, in [0,1].
  double ChannelUtilization(uint32_t c) const {
    return elapsed_us_ > 0 ? channel_busy_us_[c] / elapsed_us_ : 0.0;
  }
  /// Utilization of every channel (index = channel id).
  std::vector<double> ChannelUtilizations() const {
    std::vector<double> out(num_channels());
    for (uint32_t c = 0; c < num_channels(); ++c) {
      out[c] = ChannelUtilization(c);
    }
    return out;
  }
  /// Deepest any channel queue ever got (lifetime watermark).
  uint32_t max_queue_depth() const { return max_queue_depth_; }
  /// Lifetime submissions across all channels.
  uint64_t total_submissions() const { return submissions_; }

  /// Snapshot for interval measurements (Figure 9 uses 10k-write windows).
  IoCounters Snapshot() const { return counters_; }

  void Reset() {
    counters_ = IoCounters();
    elapsed_us_ = 0;
    std::fill(channel_busy_us_.begin(), channel_busy_us_.end(), 0.0);
    std::fill(channel_ops_.begin(), channel_ops_.end(), uint64_t{0});
    // channel_depth_ and host_inflight_ are live pipeline state, not
    // statistics: in-flight submissions still complete after a Reset.
    max_queue_depth_ = 0;
    submissions_ = 0;
    host_inflight_watermark_ = host_inflight_;
    host_admissions_ = 0;
    host_queue_full_ = 0;
    // miss_fetch_inflight_ is live pipeline state too (fetches issued
    // before the Reset still complete after it).
    miss_fetch_inflight_watermark_ = miss_fetch_inflight_;
    miss_fetches_issued_ = 0;
    coalesced_misses_ = 0;
    read_retries_ = 0;
    transient_read_faults_ = 0;
    hard_read_faults_ = 0;
    program_faults_ = 0;
    erase_faults_ = 0;
    miss_stall_.Reset();
    for (LatencyHistogram& h : request_latency_) h.Reset();
  }

 private:
  LatencyModel latency_;
  IoCounters counters_;
  double elapsed_us_ = 0;
  std::vector<double> channel_busy_us_;
  std::vector<uint64_t> channel_ops_;
  std::vector<uint32_t> channel_depth_;
  uint32_t max_queue_depth_ = 0;
  uint64_t submissions_ = 0;
  uint32_t host_inflight_ = 0;
  uint32_t host_inflight_watermark_ = 0;
  uint64_t host_admissions_ = 0;
  uint64_t host_queue_full_ = 0;
  uint32_t miss_fetch_inflight_ = 0;
  uint32_t miss_fetch_inflight_watermark_ = 0;
  uint64_t miss_fetches_issued_ = 0;
  uint64_t coalesced_misses_ = 0;
  uint64_t read_retries_ = 0;
  uint64_t transient_read_faults_ = 0;
  uint64_t hard_read_faults_ = 0;
  uint64_t program_faults_ = 0;
  uint64_t erase_faults_ = 0;
  LatencyHistogram miss_stall_;
  std::array<LatencyHistogram, kNumRequestClasses> request_latency_;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_IO_STATS_H_
