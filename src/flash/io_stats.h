// IO accounting for the flash device, broken down by purpose.
//
// Every device operation is tagged with an IoPurpose so experiments can
// report the write-amplification breakdown of Figure 13 (user data vs.
// translation metadata vs. page-validity metadata) and the per-interval
// series of Figure 9.

#ifndef GECKOFTL_FLASH_IO_STATS_H_
#define GECKOFTL_FLASH_IO_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "flash/latency.h"

namespace gecko {

/// Why an IO happened. kUserWrite/kUserRead are the application's own IOs;
/// everything else is internal and contributes to write-amplification.
enum class IoPurpose : uint8_t {
  kUserWrite = 0,     // the application write landing on flash
  kUserRead,          // the application read of a user page
  kGcMigration,       // reads/writes that move live pages off a GC victim
  kTranslation,       // translation-page reads/writes (sync ops, misses)
  kPvm,               // page-validity metadata (Gecko runs / PVB / PVL)
  kRecovery,          // IOs performed while recovering from power failure
  kWearLeveling,      // wear-leveling scans and migrations
  kOther,
};

inline constexpr int kNumIoPurposes = 8;

const char* IoPurposeName(IoPurpose p);

/// Raw operation counts, indexable by purpose. Value-type; subtractable to
/// form per-interval deltas.
struct IoCounters {
  std::array<uint64_t, kNumIoPurposes> page_reads{};
  std::array<uint64_t, kNumIoPurposes> page_writes{};
  std::array<uint64_t, kNumIoPurposes> spare_reads{};
  std::array<uint64_t, kNumIoPurposes> erases{};
  uint64_t logical_writes = 0;  // application-level page updates
  uint64_t logical_reads = 0;
  uint64_t logical_trims = 0;   // host trim/discard commands, per page

  uint64_t TotalReads() const;
  uint64_t TotalWrites() const;
  uint64_t TotalSpareReads() const;
  uint64_t TotalErases() const;

  /// Internal IOs: everything except the application's own page IOs.
  uint64_t InternalReads() const;
  uint64_t InternalWrites() const;

  uint64_t ReadsFor(IoPurpose p) const {
    return page_reads[static_cast<int>(p)];
  }
  uint64_t WritesFor(IoPurpose p) const {
    return page_writes[static_cast<int>(p)];
  }

  IoCounters operator-(const IoCounters& other) const;

  /// Write-amplification as defined in Section 5:
  ///   WA = (i_writes + i_reads / delta) / logical_writes
  /// where i_writes/i_reads are internal IOs per application update.
  double WriteAmplification(double delta) const;

  /// WA contribution of a single purpose (for the Figure 13 breakdown).
  double WriteAmplificationFor(IoPurpose p, double delta) const;

  std::string DebugString() const;
};

/// Mutable accumulator owned by the FlashDevice. Also integrates modeled
/// time from the LatencyModel so recovery experiments can report seconds.
class IoStats {
 public:
  explicit IoStats(LatencyModel latency = LatencyModel())
      : latency_(latency) {}

  void OnPageRead(IoPurpose p) {
    ++counters_.page_reads[static_cast<int>(p)];
    elapsed_us_ += latency_.page_read_us;
  }
  void OnPageWrite(IoPurpose p) {
    ++counters_.page_writes[static_cast<int>(p)];
    elapsed_us_ += latency_.page_write_us;
  }
  void OnSpareRead(IoPurpose p) {
    ++counters_.spare_reads[static_cast<int>(p)];
    elapsed_us_ += latency_.spare_read_us;
  }
  void OnErase(IoPurpose p) {
    ++counters_.erases[static_cast<int>(p)];
    elapsed_us_ += latency_.erase_us;
  }
  void OnLogicalWrite() { ++counters_.logical_writes; }
  void OnLogicalRead() { ++counters_.logical_reads; }
  void OnLogicalTrim() { ++counters_.logical_trims; }

  const IoCounters& counters() const { return counters_; }
  const LatencyModel& latency() const { return latency_; }
  double elapsed_us() const { return elapsed_us_; }

  /// Snapshot for interval measurements (Figure 9 uses 10k-write windows).
  IoCounters Snapshot() const { return counters_; }

  void Reset() {
    counters_ = IoCounters();
    elapsed_us_ = 0;
  }

 private:
  LatencyModel latency_;
  IoCounters counters_;
  double elapsed_us_ = 0;
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_IO_STATS_H_
