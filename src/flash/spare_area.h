// The spare (out-of-band) area of a flash page.
//
// Section 2 of the paper: every flash page has a physically adjacent spare
// area, 32x smaller than the page, written atomically with it and not
// updatable until the block is erased. FTLs store per-page metadata there:
// the logical address currently written, a write timestamp, the page type,
// and structure-specific fields (translation page id, Gecko run id, ...).

#ifndef GECKOFTL_FLASH_SPARE_AREA_H_
#define GECKOFTL_FLASH_SPARE_AREA_H_

#include <cstdint>

#include "flash/types.h"

namespace gecko {

/// Metadata written alongside a flash page. `key` is interpreted by page
/// type: the logical page number for user pages, the translation-page id
/// for translation pages, and the owning run id for Gecko/PVM pages.
/// `aux` carries a second structure-specific value (e.g. the page's index
/// within its run, or a PVB chunk id).
struct SpareArea {
  PageType type = PageType::kFree;
  uint32_t key = kInvalidU32;
  uint32_t aux = kInvalidU32;
  /// Global write sequence number; assigned by the device at program time
  /// and used as the timestamp in all recovery algorithms (Appendix C).
  uint64_t seq = 0;
  /// User pages only: this page is a trim tombstone. A trim writes a
  /// tombstone page and repoints the mapping at it, exactly like a write,
  /// so every invariant of the write path (UIP identification, GC checks,
  /// backward-scan recovery) covers trims for free; reads of a mapping
  /// that lands on a tombstone return NotFound.
  bool tombstone = false;
  /// Erase count of the block at last erase, persisted per Appendix D.
  uint16_t erase_count = 0;
  /// User pages only: write-temperature class of the page at program time
  /// (0 = hottest; see ftl/hotness.h). Every page of a user block carries
  /// the block's class, so BID recovery can rebuild the per-class active
  /// blocks from the first-page spare read it already performs. Always 0
  /// with one temperature class (the bit-identical legacy mode) and for
  /// metadata pages.
  uint8_t temp = 0;

  bool IsUser() const { return type == PageType::kUser; }
  bool IsTranslation() const { return type == PageType::kTranslation; }
  bool IsPvm() const { return type == PageType::kPvm; }
};

}  // namespace gecko

#endif  // GECKOFTL_FLASH_SPARE_AREA_H_
