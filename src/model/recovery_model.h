// Analytic recovery-time models for the five FTLs (Appendix C and
// Section 5.3's "Recovery Time Comparison").
//
// Each model decomposes recovery into named steps with counts of spare
// reads, page reads, and page writes; time uses the paper's constants
// (spare read 3 us, page read 100 us, page write 1 ms). Figure 1 (bottom)
// and Figure 13 (middle) are produced from these models at paper scale.

#ifndef GECKOFTL_MODEL_RECOVERY_MODEL_H_
#define GECKOFTL_MODEL_RECOVERY_MODEL_H_

#include <string>
#include <vector>

#include "flash/geometry.h"
#include "flash/latency.h"
#include "ftl/recovery_report.h"
#include "model/ram_model.h"

namespace gecko {

/// A recovery-time breakdown for one FTL. Steps whose cost a battery
/// absorbs are present with zero counts and `battery = true`, matching
/// the "battery" annotations of Figure 13.
struct RecoveryModelStep {
  std::string name;
  RecoveryStep cost;  // counts only; name inside is unused
  bool battery = false;
};

struct RecoveryBreakdown {
  std::string ftl;
  std::vector<RecoveryModelStep> steps;

  double TotalMicros(const LatencyModel& lat) const {
    double t = 0;
    for (const auto& s : steps) t += s.cost.Micros(lat);
    return t;
  }
};

RecoveryBreakdown DftlRecovery(const Geometry& g, const RamModelParams& p);
RecoveryBreakdown LazyFtlRecovery(const Geometry& g, const RamModelParams& p);
RecoveryBreakdown MuFtlRecovery(const Geometry& g, const RamModelParams& p);
RecoveryBreakdown IbFtlRecovery(const Geometry& g, const RamModelParams& p);
RecoveryBreakdown GeckoFtlRecovery(const Geometry& g,
                                   const RamModelParams& p);

std::vector<RecoveryBreakdown> AllFtlRecovery(const Geometry& g,
                                              const RamModelParams& p);

}  // namespace gecko

#endif  // GECKOFTL_MODEL_RECOVERY_MODEL_H_
