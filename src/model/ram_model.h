// Analytic integrated-RAM models for the five FTLs (Section 2, Appendix B).
//
// The paper's Figure 1 (top) and Figure 13 (top) are produced from these
// formulas evaluated at paper scale (e.g. a 2 TB device); simulation-scale
// behaviour does not enter. Every term is documented with the section of
// the paper it comes from.

#ifndef GECKOFTL_MODEL_RAM_MODEL_H_
#define GECKOFTL_MODEL_RAM_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gecko_config.h"
#include "flash/geometry.h"

namespace gecko {

/// One named component of an FTL's integrated-RAM footprint.
struct RamComponent {
  std::string name;
  double bytes = 0;
};

struct RamBreakdown {
  std::string ftl;
  std::vector<RamComponent> components;

  double TotalBytes() const {
    double t = 0;
    for (const RamComponent& c : components) t += c.bytes;
    return t;
  }
};

/// Parameters shared by the RAM models: cache of C entries at 8 bytes per
/// entry (Section 5's default: 4 MB -> C = 2^19).
struct RamModelParams {
  uint64_t cache_entries = 1u << 19;  // C
  double cache_entry_bytes = 8.0;
  LogGeckoConfig gecko;               // for the Logarithmic Gecko terms
};

/// GMD size: (4 * TT) / P where TT = 4*K*B*R bytes (Section 2).
double GmdBytes(const Geometry& g);
/// RAM-resident PVB: B*K/8 bytes (Section 2, "Scalability of PVB").
double RamPvbBytes(const Geometry& g);
/// BVC: 2 bytes per block (Appendix B).
double BvcBytes(const Geometry& g);

RamBreakdown DftlRam(const Geometry& g, const RamModelParams& p);
RamBreakdown LazyFtlRam(const Geometry& g, const RamModelParams& p);
RamBreakdown MuFtlRam(const Geometry& g, const RamModelParams& p);
RamBreakdown IbFtlRam(const Geometry& g, const RamModelParams& p);
RamBreakdown GeckoFtlRam(const Geometry& g, const RamModelParams& p);

/// All five, in the paper's Figure 13 order.
std::vector<RamBreakdown> AllFtlRam(const Geometry& g,
                                    const RamModelParams& p);

}  // namespace gecko

#endif  // GECKOFTL_MODEL_RAM_MODEL_H_
