#include "model/ram_model.h"

#include <cmath>

#include "core/analysis.h"

namespace gecko {

double GmdBytes(const Geometry& g) {
  // One 4-byte pointer per translation page: (4 * TT) / P (Section 2).
  return 4.0 * static_cast<double>(g.NumTranslationPages());
}

double RamPvbBytes(const Geometry& g) {
  return static_cast<double>(g.TotalPages()) / 8.0;
}

double BvcBytes(const Geometry& g) {
  return 2.0 * static_cast<double>(g.num_blocks);
}

namespace {

RamComponent Cache(const RamModelParams& p) {
  return RamComponent{"LRU cache",
                      p.cache_entries * p.cache_entry_bytes};
}

}  // namespace

RamBreakdown DftlRam(const Geometry& g, const RamModelParams& p) {
  // DFTL: GMD + RAM PVB + LRU cache. The RAM PVB dominates (Section 5.3).
  RamBreakdown b;
  b.ftl = "DFTL";
  b.components = {Cache(p),
                  RamComponent{"GMD", GmdBytes(g)},
                  RamComponent{"PVB", RamPvbBytes(g)}};
  return b;
}

RamBreakdown LazyFtlRam(const Geometry& g, const RamModelParams& p) {
  // LazyFTL's structures match DFTL's for RAM purposes (RAM PVB + GMD).
  RamBreakdown b = DftlRam(g, p);
  b.ftl = "LazyFTL";
  return b;
}

RamBreakdown MuFtlRam(const Geometry& g, const RamModelParams& p) {
  // µ-FTL: flash PVB (only a chunk directory in RAM), B-tree translation
  // table with a resident root instead of a GMD, BVC for victim selection.
  RamBreakdown b;
  b.ftl = "uFTL";
  double chunks = std::ceil(static_cast<double>(g.TotalPages()) /
                            (g.page_bytes * 8.0));
  b.components = {Cache(p),
                  RamComponent{"B-tree root", static_cast<double>(g.page_bytes)},
                  RamComponent{"PVB directory", 8.0 * chunks},
                  RamComponent{"BVC", BvcBytes(g)}};
  return b;
}

RamBreakdown IbFtlRam(const Geometry& g, const RamModelParams& p) {
  // IB-FTL: per-block chain heads (6 bytes: page + slot) and per-block
  // erase timestamps (4 bytes) for the log cleaning extension
  // (Appendix E), plus BVC and the log's one-page buffer.
  RamBreakdown b;
  b.ftl = "IB-FTL";
  b.components = {Cache(p),
                  RamComponent{"B-tree root", static_cast<double>(g.page_bytes)},
                  RamComponent{"PVL chain heads", 6.0 * g.num_blocks},
                  RamComponent{"PVL erase timestamps", 4.0 * g.num_blocks},
                  RamComponent{"PVL buffer", static_cast<double>(g.page_bytes)},
                  RamComponent{"BVC", BvcBytes(g)}};
  return b;
}

RamBreakdown GeckoFtlRam(const Geometry& g, const RamModelParams& p) {
  // GeckoFTL: GMD + Logarithmic Gecko's run directories and buffers
  // (Appendix B) + BVC.
  RamBreakdown b;
  b.ftl = "GeckoFTL";
  const LogGeckoConfig& c = p.gecko;
  double v = c.EntriesPerPage(g);
  double gecko_pages = 2.0 * g.num_blocks * c.partition_factor / v;
  double levels = LogGeckoLevels(g, c);
  double buffers =
      static_cast<double>(g.page_bytes) *
      (c.merge_policy == MergePolicy::kMultiWay ? (2.0 + levels) : 3.0);
  b.components = {Cache(p),
                  RamComponent{"GMD", GmdBytes(g)},
                  RamComponent{"Gecko run directories", 8.0 * gecko_pages},
                  RamComponent{"Gecko buffers", buffers},
                  RamComponent{"BVC", BvcBytes(g)}};
  return b;
}

std::vector<RamBreakdown> AllFtlRam(const Geometry& g,
                                    const RamModelParams& p) {
  return {DftlRam(g, p), LazyFtlRam(g, p), MuFtlRam(g, p), IbFtlRam(g, p),
          GeckoFtlRam(g, p)};
}

}  // namespace gecko
