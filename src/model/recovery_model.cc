#include "model/recovery_model.h"

#include <cmath>

#include "core/analysis.h"

namespace gecko {

namespace {

// Shared step: the Blocks Information Directory scan — one spare read per
// block (Appendix C step 1; Figure 13 notes it is an emerging bottleneck
// for every FTL).
RecoveryModelStep BlockScan(const Geometry& g) {
  RecoveryModelStep s;
  s.name = "block scan (BID)";
  s.cost.spare_reads = g.num_blocks;
  return s;
}

// Shared step: GMD recovery scans the spare areas of all pages in
// translation blocks — O(K*B/P) spare reads (Appendix C step 2). We model
// two resident versions per translation page (current + not-yet-erased).
RecoveryModelStep GmdScan(const Geometry& g) {
  RecoveryModelStep s;
  s.name = "GMD";
  s.cost.spare_reads = 2 * g.NumTranslationPages();
  return s;
}

RecoveryModelStep Battery(const std::string& what) {
  RecoveryModelStep s;
  s.name = what + " (battery)";
  s.battery = true;
  return s;
}

// Dirty-entry identification + synchronization before normal operation
// resumes (LazyFTL / IB-FTL): scan 2*cap spare reads, then one
// translation-page read + write per dirty entry's page (conservatively
// one per entry, as the entries are scattered uniformly).
void AddSyncBeforeResume(const Geometry& g, uint64_t dirty_cap,
                         RecoveryBreakdown* b) {
  RecoveryModelStep scan;
  scan.name = "LRU cache (identify dirty entries)";
  scan.cost.spare_reads = 2 * dirty_cap;
  b->steps.push_back(scan);

  RecoveryModelStep sync;
  sync.name = "LRU cache (synchronize before resume)";
  uint64_t ops = std::min<uint64_t>(dirty_cap, g.NumTranslationPages());
  sync.cost.page_reads = ops;
  sync.cost.page_writes = ops;
  b->steps.push_back(sync);
}

}  // namespace

RecoveryBreakdown DftlRecovery(const Geometry& g, const RamModelParams& p) {
  RecoveryBreakdown b;
  b.ftl = "DFTL";
  b.steps = {BlockScan(g), GmdScan(g)};
  // The battery copied the RAM PVB to flash; reading it back costs
  // (B*K/8)/P page reads.
  RecoveryModelStep pvb;
  pvb.name = "PVB read-back";
  pvb.cost.page_reads =
      (g.TotalPages() / 8 + g.page_bytes - 1) / g.page_bytes;
  b.steps.push_back(pvb);
  b.steps.push_back(Battery("LRU cache"));
  (void)p;
  return b;
}

RecoveryBreakdown LazyFtlRecovery(const Geometry& g,
                                  const RamModelParams& p) {
  RecoveryBreakdown b;
  b.ftl = "LazyFTL";
  b.steps = {BlockScan(g), GmdScan(g)};
  // PVB rebuild scans the whole translation table: TT/P page reads
  // (Section 2, "Scalability of PVB").
  RecoveryModelStep pvb;
  pvb.name = "PVB rebuild (translation-table scan)";
  pvb.cost.page_reads = g.NumTranslationPages();
  b.steps.push_back(pvb);
  AddSyncBeforeResume(g, p.cache_entries / 10, &b);
  return b;
}

RecoveryBreakdown MuFtlRecovery(const Geometry& g, const RamModelParams& p) {
  RecoveryBreakdown b;
  b.ftl = "uFTL";
  b.steps = {BlockScan(g), GmdScan(g)};
  uint64_t chunks = static_cast<uint64_t>(
      std::ceil(static_cast<double>(g.TotalPages()) / (g.page_bytes * 8.0)));
  RecoveryModelStep dir;
  dir.name = "PVB chunk directory (spare scan)";
  dir.cost.spare_reads = 2 * chunks;
  b.steps.push_back(dir);
  RecoveryModelStep bvc;
  bvc.name = "BVC (read PVB chunks)";
  bvc.cost.page_reads = chunks;
  b.steps.push_back(bvc);
  b.steps.push_back(Battery("LRU cache"));
  (void)p;
  return b;
}

RecoveryBreakdown IbFtlRecovery(const Geometry& g, const RamModelParams& p) {
  RecoveryBreakdown b;
  b.ftl = "IB-FTL";
  b.steps = {BlockScan(g), GmdScan(g)};
  // The whole page-validity log must be scanned to rebuild the chain
  // heads: X = 2*D records at P/16 records per page (Appendix E).
  RecoveryModelStep log;
  log.name = "PVL (full log scan)";
  uint64_t d = g.TotalPages() - g.NumLogicalPages();
  uint64_t records_per_page = g.page_bytes / 16;
  log.cost.page_reads = 2 * d / records_per_page;
  b.steps.push_back(log);
  AddSyncBeforeResume(g, p.cache_entries / 10, &b);
  return b;
}

RecoveryBreakdown GeckoFtlRecovery(const Geometry& g,
                                   const RamModelParams& p) {
  RecoveryBreakdown b;
  b.ftl = "GeckoFTL";
  b.steps = {BlockScan(g), GmdScan(g)};

  const LogGeckoConfig& c = p.gecko;
  double v = c.EntriesPerPage(g);
  uint64_t gecko_pages = static_cast<uint64_t>(
      2.0 * g.num_blocks * c.partition_factor / v);

  RecoveryModelStep dirs;
  dirs.name = "Gecko run directories (spare scan)";
  dirs.cost.spare_reads = gecko_pages;
  b.steps.push_back(dirs);

  RecoveryModelStep buffer;
  buffer.name = "Gecko buffer (translation diff)";
  buffer.cost.page_reads = 2 * static_cast<uint64_t>(v);  // <= 2V (App. C.2)
  b.steps.push_back(buffer);

  RecoveryModelStep bvc;
  bvc.name = "BVC (scan Logarithmic Gecko)";
  bvc.cost.page_reads = gecko_pages;
  b.steps.push_back(bvc);

  // Dirty entries: identify only (2*C spare reads); synchronization is
  // deferred until after normal operation resumes (Section 4.3).
  RecoveryModelStep lru;
  lru.name = "LRU cache (identify; sync deferred)";
  lru.cost.spare_reads = 2 * p.cache_entries;
  b.steps.push_back(lru);
  return b;
}

std::vector<RecoveryBreakdown> AllFtlRecovery(const Geometry& g,
                                              const RamModelParams& p) {
  return {DftlRecovery(g, p), LazyFtlRecovery(g, p), MuFtlRecovery(g, p),
          IbFtlRecovery(g, p), GeckoFtlRecovery(g, p)};
}

}  // namespace gecko
